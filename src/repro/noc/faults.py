"""Deterministic fault injection: failing links, ports and NI buffers.

EquiNox's redundancy argument — any of a CB's Equivalent Injection
Routers can inject its replies — is only meaningful if the system
survives losing injectors.  This module makes faults a first-class,
reproducible experiment input:

* :class:`FaultSpec` — one declarative fault: *what* fails (a mesh
  link, an interposer RDL link to an EIR, a router port, or one NI
  injection buffer), *when* (``at_cycle``), and optionally when it
  heals (``heal_cycle``) for transient faults;
* :class:`FaultPlan` — an ordered collection of specs with JSON
  round-tripping (``repro sweep --faults plan.json`` / ``REPRO_FAULTS``);
* :class:`FaultInjector` — binds a plan to a live fabric and applies /
  heals faults at exact base cycles from the system run loop.

Degradation semantics (audit-aware, not audit-disabled):

* a failed **NI buffer / EIR link** is *quarantined*: an idle buffer
  stops accepting packets; an untransmitted packet (no VC held — VC
  allocation and the first flit send are atomic in ``try_send``) is
  reclaimed whole and requeued at the head of the NI source queue for
  re-selection among the surviving injectors; a mid-wormhole packet has
  its on-wire flits pulled back (credits restored, ``flits_dropped``
  ledger incremented so the flit-conservation audit still balances) and
  either aborts entirely (nothing committed downstream) or *drains* —
  finishes its packet over the failing link at a packet boundary —
  before the buffer quarantines itself;
* a failed **mesh link** is fail-stop for new allocations only: the
  router stops routing packets onto it; when every turn-model-legal
  port is structurally unusable the router walks the fault boundary
  (minimal directions first, then right/left/reverse of the primary
  one, never back out the arrival port); packets already allocated
  finish their wormhole;
* a **router port** fault expands to the mesh link in both directions
  (or, for an injection port, to the NI buffer feeding it).

Everything is deterministic: faults fire at fixed base cycles in spec
order, and an *armed but never-firing* plan leaves the run bit-identical
(``stats_fingerprint``) to an unarmed one.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from . import routing

FAULT_KINDS = ("eir_link", "ni_buffer", "mesh_link", "router_port")

FAULTS_ENV = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    ``kind`` selects the target class:

    * ``eir_link`` — the RDL link from CB ``node`` to EIR ``peer``
      (both ``None`` = wildcard: the injector picks the next unused EIR
      link in deterministic design order, so a generic plan like "fail
      two EIR links" works for any MCTS design);
    * ``ni_buffer`` — injection buffer ``buffer`` of the NI at ``node``;
    * ``mesh_link`` — the mesh link between ``node`` and ``peer``
      (failed in both directions);
    * ``router_port`` — port ``port`` of the router at ``node``.

    ``net`` names the fabric role the fault applies to (``reply``,
    ``request`` or ``any``).  ``heal_cycle`` (exclusive of ``at_cycle``)
    makes the fault transient.
    """

    kind: str
    node: Optional[int] = None
    peer: Optional[int] = None
    port: Optional[int] = None
    buffer: Optional[int] = None
    net: str = "reply"
    at_cycle: int = 0
    heal_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.net not in ("reply", "request", "any"):
            raise ValueError(f"unknown fault net role {self.net!r}")
        if self.at_cycle < 0:
            raise ValueError("at_cycle must be non-negative")
        if self.heal_cycle is not None and self.heal_cycle <= self.at_cycle:
            raise ValueError("heal_cycle must be after at_cycle")
        if self.kind == "ni_buffer" and (
            self.node is None or self.buffer is None
        ):
            raise ValueError("ni_buffer faults need node and buffer")
        if self.kind == "mesh_link" and (
            self.node is None or self.peer is None
        ):
            raise ValueError("mesh_link faults need node and peer")
        if self.kind == "router_port" and (
            self.node is None or self.port is None
        ):
            raise ValueError("router_port faults need node and port")
        if self.kind == "eir_link" and (self.node is None) != (
            self.peer is None
        ):
            raise ValueError(
                "eir_link faults need both node and peer, or neither "
                "(wildcard)"
            )

    @property
    def transient(self) -> bool:
        return self.heal_cycle is not None

    def to_dict(self) -> Dict[str, object]:
        return {k: v for k, v in asdict(self).items() if v is not None}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ValueError(f"fault spec must be an object, got {data!r}")
        unknown = set(data) - {
            "kind", "node", "peer", "port", "buffer", "net",
            "at_cycle", "heal_cycle",
        }
        if unknown:
            raise ValueError(f"unknown fault spec fields {sorted(unknown)}")
        if "kind" not in data:
            raise ValueError("fault spec is missing 'kind'")
        return FaultSpec(**data)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, serialisable collection of fault specs."""

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def empty(self) -> bool:
        return not self.faults

    def to_json(self) -> str:
        return json.dumps(
            {"faults": [spec.to_dict() for spec in self.faults]},
            indent=2,
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from None
        if isinstance(data, dict):
            data = data.get("faults", [])
        if not isinstance(data, list):
            raise ValueError(
                "fault plan must be a JSON list of specs or an object "
                "with a 'faults' list"
            )
        return FaultPlan(tuple(FaultSpec.from_dict(item) for item in data))

    @staticmethod
    def load(path: Union[str, Path]) -> "FaultPlan":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ValueError(f"cannot read fault plan {path}: {exc}") from None
        try:
            return FaultPlan.from_json(text)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from None

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path


def parse_faults_arg(value: str) -> Tuple[FaultSpec, ...]:
    """``--faults`` / ``REPRO_FAULTS``: inline JSON or a plan file path."""
    value = value.strip()
    if not value:
        return ()
    if value.startswith("[") or value.startswith("{"):
        return FaultPlan.from_json(value).faults
    return FaultPlan.load(value).faults


def faults_from_env() -> Tuple[FaultSpec, ...]:
    """Fault specs requested via ``REPRO_FAULTS`` (empty when unset)."""
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if not raw:
        return ()
    return parse_faults_arg(raw)


# ----------------------------------------------------------------------
# Plan builders
# ----------------------------------------------------------------------
def eir_link_faults(
    design: "object",
    per_group: int,
    at_cycle: int = 0,
    heal_cycle: Optional[int] = None,
) -> Tuple[FaultSpec, ...]:
    """Fail the first ``per_group`` EIR links of every CB group."""
    specs: List[FaultSpec] = []
    for group in design.groups:
        for eir in group.nodes[:per_group]:
            specs.append(
                FaultSpec(
                    kind="eir_link",
                    node=group.cb,
                    peer=eir,
                    at_cycle=at_cycle,
                    heal_cycle=heal_cycle,
                )
            )
    return tuple(specs)


def random_injection_faults(
    seed: int,
    design: "object",
    num_faults: int = 4,
    fire_window: Tuple[int, int] = (100, 2000),
    heal_after: Tuple[int, int] = (50, 400),
    permanent_fraction: float = 0.0,
) -> Tuple[FaultSpec, ...]:
    """A seeded random schedule of injection-side faults.

    Draws EIR-link faults (when the design has EIR groups) and local
    NI-buffer faults at the placed CBs, mostly transient so workloads
    still complete; used by the property-style conservation tests.
    """
    rng = random.Random(seed)
    links = [(g.cb, eir) for g in design.groups for eir in g.nodes]
    specs: List[FaultSpec] = []
    for _ in range(num_faults):
        at = rng.randrange(*fire_window)
        heal: Optional[int] = at + rng.randrange(*heal_after)
        if rng.random() < permanent_fraction:
            heal = None
        if links and rng.random() < 0.7:
            cb, eir = rng.choice(links)
            specs.append(
                FaultSpec(
                    kind="eir_link", node=cb, peer=eir,
                    at_cycle=at, heal_cycle=heal,
                )
            )
        else:
            cb = rng.choice(list(design.placement))
            specs.append(
                FaultSpec(
                    kind="ni_buffer", node=cb, buffer=0,
                    at_cycle=at, heal_cycle=heal,
                )
            )
    return tuple(specs)


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class _BufferTarget:
    """A fault bound to one NI injection buffer."""

    __slots__ = ("net", "ni", "buf")

    def __init__(self, net, ni, buf) -> None:
        self.net = net
        self.ni = ni
        self.buf = buf


class _LinkTarget:
    """A fault bound to one directed router output port."""

    __slots__ = ("net", "router", "port")

    def __init__(self, net, router, port: int) -> None:
        self.net = net
        self.router = router
        self.port = port


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live fabric, cycle by cycle.

    Binding happens once at construction; :meth:`on_cycle` is called by
    the system run loop at every base cycle and fires any due fail/heal
    events in deterministic ``(cycle, spec order)`` order.  Specs that
    match nothing in this fabric (e.g. EIR-link faults applied to a
    baseline scheme) are recorded in ``unmatched`` and skipped — the
    same plan can drive a whole sweep — unless ``strict`` is set.
    """

    def __init__(self, fabric, plan: FaultPlan, strict: bool = False) -> None:
        self.fabric = fabric
        self.plan = plan
        self.unmatched: List[FaultSpec] = []
        self.applied = 0
        self.healed = 0
        self._next = 0
        # Wildcard eir_link specs consume EIR links in deterministic
        # design order (NI registration order, then buffer order).
        self._wildcard_pool = self._eir_link_pool()
        self._wildcard_used = 0
        events: List[Tuple[int, int, str, object]] = []
        for order, spec in enumerate(plan.faults):
            targets = self._resolve(spec)
            if not targets:
                if strict:
                    raise ValueError(f"fault spec matched nothing: {spec}")
                self.unmatched.append(spec)
                continue
            for target in targets:
                events.append((spec.at_cycle, order, "fail", target))
                if spec.heal_cycle is not None:
                    events.append((spec.heal_cycle, order, "heal", target))
        events.sort(key=lambda ev: (ev[0], ev[1], ev[2] == "heal"))
        self._events = events

    def next_event_cycle(self) -> Optional[int]:
        """Base cycle of the next unfired event (None when exhausted).

        Quiescence fast-forward must not jump past a scheduled fault:
        the system run loop caps any clock skip at this cycle.
        """
        if self._next >= len(self._events):
            return None
        return self._events[self._next][0]

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def _nets(self, role: str):
        return self.fabric.networks_by_role(role)

    def _eir_link_pool(self) -> List[_BufferTarget]:
        pool: List[_BufferTarget] = []
        for net in self._nets("reply"):
            for ni in net.nis:
                eir_buffer = getattr(ni, "_eir_buffer", None)
                if not eir_buffer:
                    continue
                for _eir, idx in eir_buffer.items():
                    pool.append(_BufferTarget(net, ni, ni.buffers[idx]))
        return pool

    def _resolve(self, spec: FaultSpec) -> List[object]:
        if spec.kind == "eir_link":
            return self._resolve_eir_link(spec)
        if spec.kind == "ni_buffer":
            return self._resolve_ni_buffer(spec)
        if spec.kind == "mesh_link":
            return self._resolve_mesh_link(spec)
        return self._resolve_router_port(spec)

    def _resolve_eir_link(self, spec: FaultSpec) -> List[object]:
        if spec.node is None:  # wildcard: next unused EIR link
            if self._wildcard_used >= len(self._wildcard_pool):
                return []
            target = self._wildcard_pool[self._wildcard_used]
            self._wildcard_used += 1
            return [target]
        for net in self._nets(spec.net):
            for ni in net.nis:
                if ni.node != spec.node:
                    continue
                idx = getattr(ni, "_eir_buffer", {}).get(spec.peer)
                if idx is not None:
                    return [_BufferTarget(net, ni, ni.buffers[idx])]
        return []

    def _resolve_ni_buffer(self, spec: FaultSpec) -> List[object]:
        targets: List[object] = []
        for net in self._nets(spec.net):
            for ni in net.nis:
                if ni.node != spec.node:
                    continue
                if spec.buffer < len(ni.buffers):
                    targets.append(
                        _BufferTarget(net, ni, ni.buffers[spec.buffer])
                    )
        return targets

    def _resolve_mesh_link(self, spec: FaultSpec) -> List[object]:
        targets: List[object] = []
        for net in self._nets(spec.net):
            if spec.node >= len(net.routers) or spec.peer >= len(net.routers):
                continue
            for a, b in ((spec.node, spec.peer), (spec.peer, spec.node)):
                router = net.routers[a]
                for port, (nbr, _nbr_port) in router.neighbors.items():
                    if nbr == b:
                        targets.append(_LinkTarget(net, router, port))
        return targets

    def _resolve_router_port(self, spec: FaultSpec) -> List[object]:
        targets: List[object] = []
        for net in self._nets(spec.net):
            if spec.node >= len(net.routers):
                continue
            router = net.routers[spec.node]
            if spec.port < routing.NUM_MESH_PORTS:
                if spec.port not in router.neighbors:
                    continue
                nbr, _nbr_port = router.neighbors[spec.port]
                targets.append(_LinkTarget(net, router, spec.port))
                targets.append(
                    _LinkTarget(
                        net, net.routers[nbr], routing.opposite(spec.port)
                    )
                )
            else:
                # Injection/interposer input port: fail the NI buffer
                # that feeds it (same quarantine semantics).
                link = net.upstream.get((spec.node, spec.port))
                if link is None:
                    continue
                for ni in net.nis:
                    for buf in ni.buffers:
                        if buf.link is link:
                            targets.append(_BufferTarget(net, ni, buf))
        return targets

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def on_cycle(self, cycle: int) -> None:
        """Fire every event due at or before ``cycle`` (base cycles)."""
        events = self._events
        while self._next < len(events) and events[self._next][0] <= cycle:
            _at, _order, action, target = events[self._next]
            self._next += 1
            if isinstance(target, _BufferTarget):
                if action == "fail":
                    self._fail_buffer(target)
                else:
                    self._heal_buffer(target)
            else:
                if action == "fail":
                    self._fail_link(target)
                else:
                    self._heal_link(target)

    def _fail_buffer(self, target: _BufferTarget) -> None:
        buf = target.buf
        if buf.failed or buf.draining:
            return  # already down (overlapping specs)
        self.applied += 1
        net = target.net
        # The injector mutates buffer/link state behind the scheduler's
        # back, so any credit-stall hint is stale.  The wake happens at
        # the end of this method, after every mutation, so the armed
        # set tracks has_work exactly.
        buf.stalled = False
        net.faults_fired = True
        net.soa_invalidate()
        stats = net.stats
        if buf.cur_vc is not None:
            # Mid-wormhole: pull the on-wire flits back first.  They
            # were counted as injected, so they enter the dropped-flit
            # ledger and their link credits are restored.
            wire = net.reclaim_scheduled_flits(
                buf.target_node, buf.target_port
            )
            for flit in reversed(wire):
                buf.flits.appendleft(flit)
            if wire:
                buf.link.credits[buf.cur_vc] += len(wire)
                stats.flits_dropped += len(wire)
            packet = buf.flits[0].packet
            if len(buf.flits) == packet.size:
                # Nothing committed downstream: abort the transmission
                # entirely and recover the packet for re-selection.
                buf.link.owner[buf.cur_vc] = None
                buf.cur_vc = None
                stats.flits_reclaimed += packet.size - len(wire)
                buf.flits.clear()
                target.ni.source_queue.appendleft(packet)
                stats.packets_recovered += 1
                buf.failed = True
            else:
                # Flits are already inside the downstream router: finish
                # the packet over the failing link (fail at a packet
                # boundary), then quarantine.
                buf.draining = True
        elif buf.flits:
            # Loaded but untransmitted (no VC held implies zero flits
            # sent): reclaim the whole packet, never injected.
            packet = buf.flits[0].packet
            stats.flits_reclaimed += len(buf.flits)
            buf.flits.clear()
            target.ni.source_queue.appendleft(packet)
            stats.packets_recovered += 1
            buf.failed = True
        else:
            buf.failed = True
        net.wake_ni(target.ni)

    def _heal_buffer(self, target: _BufferTarget) -> None:
        buf = target.buf
        if buf.failed or buf.draining:
            self.healed += 1
        buf.failed = False
        buf.draining = False
        # A healed buffer can accept queued packets again: wake the NI,
        # whose sleep decision predates the heal.
        buf.stalled = False
        target.net.wake_ni(target.ni)
        target.net.soa_invalidate()

    def _fail_link(self, target: _LinkTarget) -> None:
        if target.port not in target.router.failed_outputs:
            target.router.failed_outputs.add(target.port)
            target.net.faults_fired = True
            target.net.soa_invalidate()
            self.applied += 1

    def _heal_link(self, target: _LinkTarget) -> None:
        if target.port in target.router.failed_outputs:
            target.router.failed_outputs.discard(target.port)
            target.net.soa_invalidate()
            self.healed += 1

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Counters for reports: bound/applied/healed/unmatched."""
        return {
            "specs": len(self.plan),
            "events": len(self._events),
            "applied": self.applied,
            "healed": self.healed,
            "unmatched": len(self.unmatched),
        }
