"""Unidirectional-loop topologies: ring-router and routerless NoCs.

Two independent baselines ride on the same machinery:

* **Ring router** (Wu et al., "A Ring Router Microarchitecture for
  NoCs") — every node sits on two counter-rotating rings that visit the
  whole chip in serpentine (boustrophedon) order.  A station forwards
  one flit per cycle along its ring; the small per-station side buffer
  is the input VC FIFO.  The serpentine closing link (last node back to
  the first) is a long express wire — on the interposer model it is a
  single-cycle interposer trace, exactly like an EquiNox CB-to-EIR
  link.
* **Routerless NoC** (Lin et al., "Optimizing Routerless
  Network-on-Chip Designs") — a precomputed set of overlapping
  unidirectional loops covers every source/destination pair, so no
  per-hop route computation exists at all: injection *selects a wire*
  (a loop) and the packet rides it to the destination.

Both map onto the simulator as a :class:`~repro.noc.network.Network`
constructed with ``loops=...``: each directed loop hop is its own
point-to-point link (an output-only port upstream, an input-only port
downstream), the mesh ports stay unwired, and every router gets a
``route_override`` from the shared :class:`LoopState`.

Deadlock freedom — the dateline argument
----------------------------------------

A packet injected at loop position ``p`` travels forward at most
``L - 1`` hops.  The hop *into* the node at loop position ``j`` uses VC
class ``1`` iff ``j < p`` (the packet has crossed the loop's wrap
point), else VC ``0``; the injection link itself always carries VC 0.
Rank the channels ``(VC0, j) -> j`` and ``(VC1, j) -> L + j``: every
buffer dependency strictly increases the rank — VC0 never uses the wrap
edge (that would require ``L`` hops), VC1 is entered exactly once at
the wrap and never returns to VC0 — so the channel dependency graph is
acyclic and the loop cannot deadlock.  Ejection drains unconditionally
(the GPU model pops every delivered packet), closing the argument.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.grid import Grid
from .interface import BASE_CORE_BYTES, NetworkInterface, SerializationCore
from .network import Network
from .types import Packet

__all__ = [
    "serpentine_order",
    "ring_loops",
    "routerless_loops",
    "verify_loop_cover",
    "LoopState",
    "LoopInterface",
]


# ----------------------------------------------------------------------
# Loop constructions
# ----------------------------------------------------------------------
def serpentine_order(grid: Grid) -> List[int]:
    """All nodes in boustrophedon order (row 0 L-to-R, row 1 R-to-L...)."""
    order: List[int] = []
    for y in range(grid.height):
        xs = range(grid.width) if y % 2 == 0 else range(grid.width - 1, -1, -1)
        order.extend(grid.node(x, y) for x in xs)
    return order


def ring_loops(grid: Grid) -> List[Tuple[int, ...]]:
    """Two counter-rotating serpentine rings covering every node.

    Any (src, dst) pair lies on both rings, so lane selection reduces
    to picking the rotation with the shorter forward distance.
    """
    forward = serpentine_order(grid)
    return [tuple(forward), tuple(reversed(forward))]


def _perimeter(
    grid: Grid, x0: int, y0: int, x1: int, y1: int, clockwise: bool
) -> Tuple[int, ...]:
    """Boundary walk of the rectangle ``[x0..x1] x [y0..y1]`` (>= 2x2)."""
    if x1 <= x0 or y1 <= y0:
        raise ValueError("loop rectangle must span at least 2x2 nodes")
    walk: List[Tuple[int, int]] = []
    walk.extend((x, y0) for x in range(x0, x1))  # top edge, left to right
    walk.extend((x1, y) for y in range(y0, y1))  # right edge, downward
    walk.extend((x, y1) for x in range(x1, x0, -1))  # bottom, right to left
    walk.extend((x0, y) for y in range(y1, y0, -1))  # left edge, upward
    if not clockwise:
        walk.reverse()
    return tuple(grid.node(x, y) for x, y in walk)


def routerless_loops(grid: Grid) -> List[Tuple[int, ...]]:
    """Layered slab-rectangle loop set covering every (src, dst) pair.

    Layer ``k`` spans the rectangle ``R_k = [k..W-1-k] x [k..H-1-k]``;
    while it is at least 2x2 we emit the perimeters of every *slab*
    anchored at one of its four edges (left slabs ``[k..a] x R_k``,
    right, top and bottom analogues), deduplicated, with alternating
    rotation to balance link load.

    Coverage: for a pair (u, v), let ``k`` be the smaller of their ring
    depths, so both lie inside ``R_k`` and (say) u on its border.  If u
    is on the left/right column, the horizontal slab whose moving edge
    passes through v's row contains both; if u is on the top/bottom
    row, the vertical slab through v's column does.  The property test
    in ``tests/test_schemes.py`` checks this exhaustively per mesh.
    """
    width, height = grid.width, grid.height
    loops: List[Tuple[int, ...]] = []
    seen_rects: set = set()

    def emit(rect: Tuple[int, int, int, int]) -> None:
        if rect in seen_rects:
            return
        seen_rects.add(rect)
        loops.append(_perimeter(grid, *rect, clockwise=len(loops) % 2 == 0))

    k = 0
    while (width - 1 - k) - k >= 1 and (height - 1 - k) - k >= 1:
        x0, x1 = k, width - 1 - k
        y0, y1 = k, height - 1 - k
        for a in range(x0 + 1, x1 + 1):  # slabs growing from the left edge
            emit((x0, y0, a, y1))
        for a in range(x0, x1):  # slabs growing from the right edge
            emit((a, y0, x1, y1))
        for b in range(y0 + 1, y1 + 1):  # slabs from the top edge
            emit((x0, y0, x1, b))
        for b in range(y0, y1):  # slabs from the bottom edge
            emit((x0, b, x1, y1))
        k += 1
    if not loops:
        raise ValueError(
            f"routerless loops need a mesh of at least 2x2 nodes, "
            f"got {width}x{height}"
        )
    return loops


def verify_loop_cover(grid: Grid, loops: Sequence[Sequence[int]]) -> None:
    """Raise if some (src, dst) pair is on no common loop (test support)."""
    membership: List[set] = [set() for _ in range(grid.size)]
    for lane, loop in enumerate(loops):
        for node in loop:
            membership[node].add(lane)
    for src in range(grid.size):
        for dst in range(grid.size):
            if src != dst and membership[src].isdisjoint(membership[dst]):
                raise AssertionError(
                    f"no loop covers pair {src}->{dst} "
                    f"on {grid.width}x{grid.height}"
                )


# ----------------------------------------------------------------------
# Routing state shared by a loop network's routers and NIs
# ----------------------------------------------------------------------
class LoopState:
    """Per-network loop routing: lane selection, forwarding, datelines.

    Constructing it on a loop-wired network installs ``route_override``
    on every router, the along-loop ``hop_fn`` for the zero-load
    latency model, and the positional VC legality check the audits use
    in place of the class-partition check.
    """

    def __init__(self, network: Network) -> None:
        if network.loops is None:
            raise ValueError("LoopState requires a network wired with loops")
        if network.num_vcs < 2:
            raise ValueError("loop datelines need at least 2 VCs")
        self.network = network
        self.loops = network.loops
        # pos[lane][node] -> index of node within lane
        self.pos: List[Dict[int, int]] = [
            {node: i for i, node in enumerate(lane)} for lane in self.loops
        ]
        # out_port[lane][node] -> forwarding port of node along lane
        self.out_port: List[Dict[int, int]] = [
            dict(zip(lane, ports))
            for lane, ports in zip(self.loops, network.loop_ports)
        ]
        # Lazy (src, dst) -> minimal-forward-distance lanes.  Lazy
        # because precomputing all pairs over ~1000 loops at 32x32 costs
        # ~1e8 operations; a workload only ever touches a sliver.
        self._candidates: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        # One rotation pointer per candidate set (cf. EquiNoxInterface):
        # a global pointer would bias lane choice whenever candidate
        # sets differ across destinations.
        self._rr: Dict[Tuple[int, ...], int] = {}
        for router in network.routers:
            router.route_override = self.route_override
        network.hop_fn = self.hop_fn
        network.loop_vc_fn = self.expected_vc

    def distance(self, lane: int, src: int, dst: int) -> int:
        """Forward hop count from ``src`` to ``dst`` along ``lane``."""
        pos = self.pos[lane]
        return (pos[dst] - pos[src]) % len(self.loops[lane])

    def candidates(self, src: int, dst: int) -> Tuple[int, ...]:
        """Lanes through both nodes at minimal forward distance."""
        key = (src, dst)
        cached = self._candidates.get(key)
        if cached is not None:
            return cached
        best: Optional[int] = None
        chosen: List[int] = []
        for lane, pos in enumerate(self.pos):
            if src not in pos or dst not in pos:
                continue
            d = self.distance(lane, src, dst)
            if best is None or d < best:
                best, chosen = d, [lane]
            elif d == best:
                chosen.append(lane)
        if not chosen:
            raise ValueError(f"no loop covers {src}->{dst}")
        result = tuple(chosen)
        self._candidates[key] = result
        return result

    def select_lane(self, src: int, dst: int) -> int:
        """Wire selection: a minimal lane, rotating over equal choices."""
        cands = self.candidates(src, dst)
        if len(cands) == 1:
            return cands[0]
        start = self._rr.get(cands, 0)
        self._rr[cands] = (start + 1) % len(cands)
        return cands[start]

    # -- hooks installed on the network --------------------------------
    def route_override(self, router: "object", packet: Packet) -> Tuple[int, Tuple[int, ...]]:
        """The lane's single forward port and its dateline VC class."""
        lane = packet.lane
        pos = self.pos[lane]
        node = router.node
        nxt = (pos[node] + 1) % len(self.loops[lane])
        allowed = (1,) if nxt < pos[packet.inject_router] else (0,)
        return self.out_port[lane][node], allowed

    def hop_fn(self, packet: Packet, inject: int, node: int) -> int:
        return self.distance(packet.lane, inject, node)

    def expected_vc(self, packet: Packet, node: int) -> int:
        """Dateline VC a flit of ``packet`` must occupy buffered at ``node``."""
        pos = self.pos[packet.lane]
        return 1 if pos[node] < pos[packet.inject_router] else 0


# ----------------------------------------------------------------------
# Injection side
# ----------------------------------------------------------------------
class LoopInterface(NetworkInterface):
    """NI for loop topologies: wire selection happens at injection.

    One local buffer, exactly like the base NI; the only addition is
    stamping ``packet.lane`` (the selected loop) before the packet
    enters the buffer, since downstream forwarding has no route
    computation to fall back on.
    """

    __slots__ = ("state",)

    def __init__(
        self,
        network: Network,
        node: int,
        state: LoopState,
        core: Optional[SerializationCore] = None,
        core_bytes: int = BASE_CORE_BYTES,
    ) -> None:
        self.state = state
        super().__init__(network, node, core, core_bytes)

    def _load(self, buf, packet: Packet, cycle: int) -> None:
        packet.lane = self.state.select_lane(self.node, packet.dst)
        super()._load(buf, packet, cycle)
