"""Packets, flits and message classes for the NoC simulator.

The simulator is flit-level: a packet of ``size`` flits is serialised
into head/body/tail flits that travel independently but in order, with
wormhole flow control across virtual channels.

Packet sizes follow the GPU convention the paper uses: control packets
(read requests, write acks) are a single flit; data packets (read
replies, write requests) carry a cache line and occupy several flits
depending on the network's flit width.
"""

from __future__ import annotations

import enum
from typing import List, Optional


class PacketType(enum.IntEnum):
    """The four M2F2M message types."""

    READ_REQUEST = 0
    WRITE_REQUEST = 1
    READ_REPLY = 2
    WRITE_REPLY = 3

    @property
    def is_request(self) -> bool:
        return self in (PacketType.READ_REQUEST, PacketType.WRITE_REQUEST)

    @property
    def is_reply(self) -> bool:
        return not self.is_request

    @property
    def carries_data(self) -> bool:
        """Whether the packet carries a cache line (long packet)."""
        return self in (PacketType.WRITE_REQUEST, PacketType.READ_REPLY)


CACHE_LINE_BYTES = 64
CONTROL_BYTES = 8
"""Header/address bytes for control packets and data-packet headers."""


def packet_bytes(ptype: PacketType) -> int:
    """Payload size in bytes (header + optional cache line)."""
    if ptype.carries_data:
        return CONTROL_BYTES + CACHE_LINE_BYTES
    return CONTROL_BYTES


def packet_flits(ptype: PacketType, flit_bytes: int) -> int:
    """Number of flits a packet occupies on a network of given width."""
    if flit_bytes <= 0:
        raise ValueError("flit width must be positive")
    return -(-packet_bytes(ptype) // flit_bytes)  # ceil division


class Packet:
    """One network packet, also carrying its latency bookkeeping."""

    __slots__ = (
        "pid",
        "ptype",
        "src",
        "dst",
        "size",
        "created",
        "injected",
        "delivered",
        "vc_class",
        "token",
        "inject_router",
        "eject_port",
        "lane",
    )

    def __init__(
        self,
        pid: int,
        ptype: PacketType,
        src: int,
        dst: int,
        size: int,
        created: int,
        vc_class: int = 0,
        token: Optional[object] = None,
    ) -> None:
        self.pid = pid
        self.ptype = ptype
        self.src = src
        self.dst = dst
        self.size = size
        self.created = created
        self.injected: Optional[int] = None
        self.delivered: Optional[int] = None
        self.vc_class = vc_class
        self.token = token  # opaque ref used to match replies to requests
        self.inject_router: Optional[int] = None
        self.eject_port: Optional[object] = None  # OutputPort that drained us
        self.lane: Optional[int] = None  # loop index on loop topologies

    def make_flits(self) -> List["Flit"]:
        """Serialise into flits (head first, tail last)."""
        return [
            Flit(self, i, i == 0, i == self.size - 1) for i in range(self.size)
        ]

    @property
    def latency(self) -> int:
        """Total latency in cycles; packet must be delivered."""
        if self.delivered is None:
            raise ValueError(f"packet {self.pid} not delivered yet")
        return self.delivered - self.created

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet({self.pid}, {self.ptype.name}, {self.src}->{self.dst}, "
            f"{self.size}f)"
        )


class Flit:
    """One flow-control unit of a packet."""

    __slots__ = ("packet", "idx", "is_head", "is_tail", "buffered_at",
                 "ready_at")

    def __init__(self, packet: Packet, idx: int, is_head: bool, is_tail: bool):
        self.packet = packet
        self.idx = idx
        self.is_head = is_head
        self.is_tail = is_tail
        self.buffered_at: int = 0  # cycle this flit entered its current buffer
        self.ready_at: int = 0  # NI-core serialisation completion cycle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({self.packet.pid}.{self.idx}{kind})"
