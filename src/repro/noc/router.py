"""A virtual-channel wormhole router with credit-based flow control.

The router follows BookSim's architecture at a one-cycle granularity:
route computation, VC allocation and separable input-first switch
allocation all happen in the cycle a flit sits at the head of its input
VC, and a winning flit traverses the crossbar onto the output link in
the same cycle (an aggressive single-stage pipeline; per-hop latency is
router + link = 2 cycles at zero load).

Port index space (per router):

* ``0..3`` — mesh ports E/W/S/N (input and output),
* ``4..4+e-1`` — ejection ports (output only; ``e`` > 1 for MultiPort),
* remaining — injection and interposer ports (input only), fed by
  network interfaces over :class:`UpstreamLink`-style credit links.

Virtual channels hold one packet each (Table 1): a VC's buffer capacity
equals the maximum packet size and output VC allocation is released
when the tail flit departs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.grid import Grid
from . import routing
from .types import Flit


class InputVC:
    """One virtual-channel FIFO at a router input port."""

    __slots__ = ("queue", "out_port", "out_vc")

    def __init__(self) -> None:
        self.queue: Deque[Flit] = deque()
        self.out_port: Optional[int] = None
        self.out_vc: Optional[int] = None

    @property
    def busy(self) -> bool:
        return bool(self.queue)


class OutputPort:
    """Credit and allocation state for one output (or NI-to-router) link.

    ``credits[v]`` counts free flit slots in the downstream input VC
    ``v``; ``owner[v]`` is the upstream agent (input ``(port, vc)`` pair
    or an NI buffer id) holding the VC for the packet in flight.
    """

    __slots__ = ("num_vcs", "credits", "owner", "latency", "rr", "interposer",
                 "capacity", "waker")

    def __init__(
        self, num_vcs: int, capacity: int, latency: int = 1,
        interposer: bool = False,
    ) -> None:
        self.num_vcs = num_vcs
        self.capacity = capacity
        self.credits: List[int] = [capacity] * num_vcs
        self.owner: List[Optional[object]] = [None] * num_vcs
        self.latency = latency
        self.rr = 0  # output-side round-robin pointer
        self.interposer = interposer
        # Optional callback fired when a credit returns to this port.
        # NI injection links use it to re-arm a credit-stalled NI under
        # the active scheduler; router-to-router ports leave it None.
        self.waker: Optional[object] = None

    def free_vcs(self, allowed: Sequence[int]) -> List[int]:
        """VCs in ``allowed`` that are unowned and have buffer space."""
        return [v for v in allowed if self.owner[v] is None and self.credits[v] > 0]

    def total_credits(self, allowed: Sequence[int]) -> int:
        return sum(self.credits[v] for v in allowed)


class Router:
    """One mesh router; owned and ticked by a :class:`~repro.noc.network.Network`."""

    __slots__ = (
        "node",
        "network",
        "grid",
        "num_vcs",
        "inputs",
        "outputs",
        "neighbors",
        "eject_ports",
        "input_ports",
        "rr_in",
        "flit_count",
        "port_flits",
        "rr_mod",
        "_vc_orders",
        "routing_algorithm",
        "vc_classes",
        "monopolize",
        "monopoly_classes",
        "eject_filter",
        "route_override",
        "failed_outputs",
        "peak_flits",
    )

    def __init__(
        self,
        node: int,
        grid: Grid,
        network: "object",
        num_vcs: int,
        vc_capacity: int,
        routing_algorithm: str,
        vc_classes: Sequence[Sequence[int]],
        num_eject_ports: int = 1,
        eject_capacity: int = 16,
        monopolize: bool = False,
        monopoly_classes: Sequence[int] = (1,),
    ) -> None:
        self.node = node
        self.grid = grid
        self.network = network
        self.num_vcs = num_vcs
        self.routing_algorithm = routing_algorithm
        # vc_classes[c] = VCs that packets of class c may use.
        self.vc_classes = [tuple(vcs) for vcs in vc_classes]
        self.monopolize = monopolize
        self.monopoly_classes = tuple(monopoly_classes)

        self.neighbors: Dict[int, Tuple[int, int]] = {}  # port -> (node, in_port)
        self.inputs: Dict[int, List[InputVC]] = {
            p: [InputVC() for _ in range(num_vcs)]
            for p in range(routing.NUM_MESH_PORTS)
        }
        self.outputs: Dict[int, OutputPort] = {}
        for p in range(routing.NUM_MESH_PORTS):
            self.outputs[p] = OutputPort(num_vcs, vc_capacity)
        self.eject_ports: List[int] = []
        next_port = routing.NUM_MESH_PORTS
        for _ in range(num_eject_ports):
            # Ejection modelled as a single-VC link into the node's
            # receive queue; one packet drains at a time per port.
            self.outputs[next_port] = OutputPort(1, eject_capacity)
            self.eject_ports.append(next_port)
            next_port += 1
        self.input_ports: List[int] = list(range(routing.NUM_MESH_PORTS))
        self.rr_in: Dict[int, int] = {p: 0 for p in self.input_ports}
        self.flit_count = 0
        # High-water mark of buffered flits (telemetry: per-router
        # congestion without any per-cycle sampling cost).
        self.peak_flits = 0
        # Flits buffered per input port: lets the tick loop skip empty
        # ports without scanning their VCs.
        self.port_flits: Dict[int, int] = {p: 0 for p in self.input_ports}
        # Round-robin modulus: one slot per port index actually in use.
        # Must cover injection/interposer ports added later — a fixed
        # modulus would alias high port indices and break fairness.
        self.rr_mod = 1 + max(max(self.inputs), max(self.outputs))
        # _vc_orders[s] is the VC scan order starting at pointer s;
        # precomputing it keeps the per-cycle loop free of modulo math.
        self._vc_orders = [
            tuple((s + k) % num_vcs for k in range(num_vcs))
            for s in range(num_vcs)
        ]
        # Optional hook restricting which eject ports a packet may use
        # (concentrated meshes dedicate one port per attached tile).
        self.eject_filter = None
        # Optional hook replacing mesh route computation entirely:
        # called as hook(router, packet) -> (out_port, allowed_vcs).
        # Loop topologies (ring/routerless) use it — a packet on a
        # unidirectional loop has exactly one forward port, and its
        # legal VCs come from the loop's dateline, not vc_classes.
        self.route_override = None
        # Output ports currently failed by fault injection.  Failure is
        # fail-stop for *new* allocations only: a packet already
        # allocated to the port finishes its wormhole normally (links
        # fail at packet boundaries).
        self.failed_outputs: set = set()

    # ------------------------------------------------------------------
    # Construction helpers (called by the network builder)
    # ------------------------------------------------------------------
    def connect(self, port: int, neighbor: int, neighbor_port: int) -> None:
        """Wire mesh ``port`` to ``neighbor``'s input ``neighbor_port``."""
        self.neighbors[port] = (neighbor, neighbor_port)

    def add_input_port(self) -> int:
        """Add an input-only port (injection or interposer); returns index."""
        port = 1 + max(max(self.inputs), max(self.outputs))
        self.inputs[port] = [InputVC() for _ in range(self.num_vcs)]
        self.input_ports.append(port)
        self.rr_in[port] = 0
        self.port_flits[port] = 0
        self.rr_mod = max(self.rr_mod, port + 1)
        return port

    def add_output_port(
        self, num_vcs: int, capacity: int, latency: int = 1,
        interposer: bool = False,
    ) -> int:
        """Add an output-only link port (loop topologies); returns index."""
        port = 1 + max(max(self.inputs), max(self.outputs))
        self.outputs[port] = OutputPort(
            num_vcs, capacity, latency=latency, interposer=interposer
        )
        self.rr_mod = max(self.rr_mod, port + 1)
        return port

    def add_eject_port(self, capacity: int) -> int:
        """Add an extra ejection port (MultiPort / concentration)."""
        port = 1 + max(max(self.inputs), max(self.outputs))
        self.outputs[port] = OutputPort(1, capacity)
        self.eject_ports.append(port)
        self.rr_mod = max(self.rr_mod, port + 1)
        return port

    def disconnected_mesh_ports(self) -> List[int]:
        """Mesh ports with no neighbour (boundary routers)."""
        return [
            p for p in range(routing.NUM_MESH_PORTS) if p not in self.neighbors
        ]

    # ------------------------------------------------------------------
    # Flit intake (called by the network when a link delivers)
    # ------------------------------------------------------------------
    def accept(self, port: int, vc: int, flit: Flit, cycle: int) -> None:
        flit.buffered_at = cycle
        self.inputs[port][vc].queue.append(flit)
        self.flit_count += 1
        if self.flit_count > self.peak_flits:
            self.peak_flits = self.flit_count
        self.port_flits[port] += 1

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> List[Tuple[int, int, int, int, Flit]]:
        """Arbitrate and return winning moves.

        Each move is ``(in_port, in_vc, out_port, out_vc, flit)``; the
        network commits them (link scheduling, credits, statistics).

        Round-robin pointers (``rr_in`` per input port, ``out.rr`` per
        output) advance lazily — only when an arbitration is actually
        won — so ticking an empty router is a strict no-op and the
        active scheduler may skip it without perturbing later
        arbitration order.
        """
        # --- Per-input-port arbitration (separable, input first) -----
        requests: List[Tuple[int, int, int, int]] = []  # in_port, in_vc, out_port, out_vc
        inputs = self.inputs
        outputs = self.outputs
        rr_in = self.rr_in
        num_vcs = self.num_vcs
        port_flits = self.port_flits
        vc_orders = self._vc_orders
        for port in self.input_ports:
            if not port_flits[port]:
                continue
            vcs = inputs[port]
            for vc in vc_orders[rr_in[port]]:
                ivc = vcs[vc]
                if not ivc.queue:
                    continue
                flit = ivc.queue[0]
                if flit.is_head and ivc.out_port is None:
                    self._route_and_allocate(port, vc, ivc, flit)
                if ivc.out_port is None:
                    continue
                out = outputs[ivc.out_port]
                if out.credits[ivc.out_vc] <= 0:
                    continue
                requests.append((port, vc, ivc.out_port, ivc.out_vc))
                break
        if not requests:
            return requests

        # --- Per-output-port arbitration ------------------------------
        if len(requests) == 1:
            winners = requests
        else:
            by_output: Dict[int, List[Tuple[int, int, int, int]]] = {}
            for req in requests:
                by_output.setdefault(req[2], []).append(req)
            winners = []
            rr_mod = self.rr_mod
            for out_port, reqs in by_output.items():
                if len(reqs) == 1:
                    winners.append(reqs[0])
                else:
                    rr = outputs[out_port].rr
                    winners.append(
                        min(reqs, key=lambda r: (r[0] - rr) % rr_mod)
                    )
        moves: List[Tuple[int, int, int, int, Flit]] = []
        for in_port, in_vc, out_port, out_vc in winners:
            out = outputs[out_port]
            ivc = inputs[in_port][in_vc]
            flit = ivc.queue.popleft()
            self.flit_count -= 1
            port_flits[in_port] -= 1
            out.credits[out_vc] -= 1
            out.rr = (in_port + 1) % self.rr_mod
            rr_in[in_port] = (in_vc + 1) % num_vcs
            if flit.is_tail:
                out.owner[out_vc] = None
                ivc.out_port = None
                ivc.out_vc = None
            moves.append((in_port, in_vc, out_port, out_vc, flit))
        return moves

    # ------------------------------------------------------------------
    # Route computation + output VC allocation for a head flit
    # ------------------------------------------------------------------
    def _route_and_allocate(
        self, port: int, vc: int, ivc: InputVC, flit: Flit
    ) -> None:
        packet = flit.packet
        if packet.dst == self.node:
            self._allocate_eject(port, vc, ivc)
            return
        if self.route_override is not None:
            out_port, allowed = self.route_override(self, packet)
            best = self._scan_outputs((out_port,), allowed, (), packet)
            if best is not None:
                _, out_port, out_vc = best
                out = self.outputs[out_port]
                out.owner[out_vc] = (port, vc)
                ivc.out_port = out_port
                ivc.out_vc = out_vc
                self.network.stats.vc_allocs += 1
            return
        src = packet.inject_router if packet.inject_router is not None else packet.src
        candidates = routing.route_candidates(
            self.grid, self.routing_algorithm, self.node, src, packet.dst
        )
        allowed = self.vc_classes[packet.vc_class]
        borrowable = self._borrowable_vcs(packet.vc_class, vc)
        # Once any fault has fired in this network, a flit may never be
        # routed back out its arrival port.  Minimal routing never makes
        # the back direction productive, so this only bites packets that
        # previously detoured around a fault — and for those it is what
        # prevents a detour from ping-ponging between two routers.
        exclude = (
            port
            if port < routing.NUM_MESH_PORTS and self.network.faults_fired
            else -1
        )
        best = self._scan_outputs(candidates, allowed, borrowable, packet,
                                  exclude)
        if best is None and self.network.faults_fired:
            # Every turn-model-legal port may be structurally unusable
            # (failed, disconnected, or the arrival port).  Only then
            # widen — a merely credit-blocked candidate keeps the turn
            # model intact and simply waits.
            usable = any(
                p in self.neighbors
                and p not in self.failed_outputs
                and p != exclude
                for p in candidates
                if p != routing.PORT_EJECT
            )
            if not usable:
                # Fault-boundary traversal: try minimal directions in
                # order, then turn right of the primary direction, then
                # left, then reverse — strict priority, first
                # allocatable port wins (unlike the credit-adaptive
                # scan above).  Combined with the no-backtrack rule
                # this walks a packet deterministically around a fault
                # region; pathological multi-fault layouts can still
                # trap one, and the stall watchdog backstops those
                # with a diagnosis.
                minimal = routing.minimal_ports(
                    self.grid, self.node, packet.dst
                )
                primary = minimal[0]
                order = list(minimal) + [
                    routing.turn_right(primary),
                    routing.turn_left(primary),
                    routing.opposite(primary),
                ]
                tried = set()
                for p in order:
                    if p in tried:
                        continue
                    tried.add(p)
                    best = self._scan_outputs(
                        (p,), allowed, borrowable, packet, exclude
                    )
                    if best is not None:
                        break
        if best is None:
            return
        _, out_port, out_vc = best
        out = self.outputs[out_port]
        out.owner[out_vc] = (port, vc)
        ivc.out_port = out_port
        ivc.out_vc = out_vc
        self.network.stats.vc_allocs += 1

    def _scan_outputs(
        self,
        ports: Sequence[int],
        allowed: Sequence[int],
        borrowable: Sequence[int],
        packet: "object",
        exclude: int = -1,
    ) -> Optional[Tuple[int, int, int]]:
        """Best allocatable ``(credits, out_port, out_vc)`` among ``ports``."""
        failed = self.failed_outputs
        best: Optional[Tuple[int, int, int]] = None
        for out_port in ports:
            if out_port == routing.PORT_EJECT:
                continue  # dst != node here; ejection handled separately
            if out_port == exclude:
                continue
            if out_port not in self.neighbors:
                continue
            if failed and out_port in failed:
                continue
            out = self.outputs[out_port]
            free = out.free_vcs(allowed)
            if not free and borrowable:
                # VC monopolisation: borrow a foreign VC, but only when
                # its buffer is completely empty and the whole packet
                # fits, so the borrower fully vacates its own-class
                # resources (cut-through on the borrowed hop) and never
                # parks behind foreign-class flits.
                free = [
                    v
                    for v in out.free_vcs(borrowable)
                    if out.credits[v] == out.capacity
                    and out.capacity >= packet.size
                ]
            if not free:
                continue
            # Minimal adaptive: prefer the output with the most credits;
            # within a port, the free VC with the most credits.
            out_vc = max(free, key=lambda v: out.credits[v])
            total = out.total_credits(allowed)
            if best is None or total > best[0]:
                best = (total, out_port, out_vc)
        return best

    def _allocate_eject(self, port: int, vc: int, ivc: InputVC) -> None:
        packet = ivc.queue[0].packet
        ports = (
            self.eject_filter(packet) if self.eject_filter is not None
            else self.eject_ports
        )
        for eject in ports:
            out = self.outputs[eject]
            if out.owner[0] is None and out.credits[0] > 0:
                out.owner[0] = (port, vc)
                ivc.out_port = eject
                ivc.out_vc = 0
                return

    def _borrowable_vcs(self, vc_class: int, current_vc: int) -> Sequence[int]:
        """Foreign VCs this packet may additionally allocate (VC-Mono).

        VC monopolisation: when no flit of the other class is buffered
        at this router, the present class may also use the other
        class's VCs.  Three restrictions keep the protocol
        deadlock-free:

        * only ``monopoly_classes`` (replies, whose ejection is
          unconditionally consumed at PEs) may borrow — a request
          parked in a reply VC could block the very replies whose
          draining the request's own progress depends on;
        * a packet *currently* in a borrowed VC must return to its own
          class downstream, so a borrowed reply waits only on
          reply-class resources, which always drain; and
        * (checked by the caller) the packet must fit entirely in the
          borrowed VC's free space, so the borrower never stalls
          mid-transfer while holding own-class buffers upstream.
        """
        if not self.monopolize or vc_class not in self.monopoly_classes:
            return ()
        own = self.vc_classes[vc_class]
        if current_vc not in own:
            return ()  # already borrowing: own class only downstream
        foreign = []
        for other in range(len(self.vc_classes)):
            if other == vc_class:
                continue
            for ovc in self.vc_classes[other]:
                for p in self.input_ports:
                    q = self.inputs[p][ovc].queue
                    if q and q[0].packet.vc_class == other:
                        return ()
                foreign.append(ovc)
        return tuple(foreign)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def buffered_flits(self) -> int:
        return self.flit_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        x, y = self.grid.coord(self.node)
        return f"Router({x},{y})"
