"""Optional per-packet event tracing.

Attach a :class:`PacketTracer` to a network to record every hop of
selected packets — the tool you reach for when a latency number looks
wrong and you need to see *where* a packet waited.  Tracing is opt-in
and filtered, so the simulator's hot path pays one attribute check when
disabled.

Usage::

    tracer = PacketTracer(net, watch=lambda p: p.pid == 42)
    ... run ...
    print(tracer.format_trace(42))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .network import Network
from .types import Packet


@dataclass(frozen=True)
class HopEvent:
    """One traced event in a packet's life."""

    cycle: int
    node: int
    kind: str  # "inject" | "hop" | "eject" | "deliver"
    flit_idx: int
    detail: str = ""


class PacketTracer:
    """Records hop events for packets selected by ``watch``.

    The tracer attaches to the network's ``on_move`` / ``on_deliver`` /
    ``on_inject`` observation hooks (chaining any hook already there),
    which every engine fires — including the vector engine's batched
    commit path, which falls back to a per-move Python loop only while
    a hook is attached.
    """

    def __init__(
        self,
        network: Network,
        watch: Optional[Callable[[Packet], bool]] = None,
        max_packets: int = 1000,
    ) -> None:
        self.network = network
        self.watch = watch or (lambda p: True)
        self.max_packets = max_packets
        self.events: Dict[int, List[HopEvent]] = {}
        self.packets: Dict[int, Packet] = {}
        self._wrap()

    # ------------------------------------------------------------------
    def _record(self, packet: Packet, event: HopEvent) -> None:
        if packet.pid not in self.events:
            if len(self.events) >= self.max_packets:
                return
            if not self.watch(packet):
                return
            self.events[packet.pid] = []
            self.packets[packet.pid] = packet
        self.events[packet.pid].append(event)

    def _wrap(self) -> None:
        net = self.network
        original_move = net.on_move
        original_deliver = net.on_deliver
        original_inject = net.on_inject
        routers = net.routers

        def move(node, in_port, in_vc, out_port, out_vc, flit, cycle):
            kind = "eject" if out_port in routers[node].eject_ports else "hop"
            self._record(
                flit.packet,
                HopEvent(
                    cycle=cycle,
                    node=node,
                    kind=kind,
                    flit_idx=flit.idx,
                    detail=f"p{in_port}v{in_vc}->p{out_port}v{out_vc}",
                ),
            )
            if original_move is not None:
                original_move(node, in_port, in_vc, out_port, out_vc,
                              flit, cycle)

        def deliver(node, eject_port, flit, cycle):
            if flit.is_tail:
                self._record(
                    flit.packet,
                    HopEvent(cycle=cycle, node=node, kind="deliver",
                             flit_idx=flit.idx),
                )
            if original_deliver is not None:
                original_deliver(node, eject_port, flit, cycle)

        def inject(buffer, flit, cycle):
            # The head flit leaving the NI buffer onto the injection
            # link — the event the "inject" kind documents; without it
            # path/wait accounting starts at the first router hop and
            # undercounts NI-link wait.
            link = "interposer" if buffer.interposer else "local"
            self._record(
                flit.packet,
                HopEvent(
                    cycle=cycle,
                    node=buffer.target_node,
                    kind="inject",
                    flit_idx=flit.idx,
                    detail=f"ni({link})->p{buffer.target_port}"
                    f"v{buffer.cur_vc}",
                ),
            )
            if original_inject is not None:
                original_inject(buffer, flit, cycle)

        net.on_move = move
        net.on_deliver = deliver
        net.on_inject = inject

    # ------------------------------------------------------------------
    def trace(self, pid: int) -> List[HopEvent]:
        """All recorded events of one packet, in order."""
        return list(self.events.get(pid, ()))

    def path(self, pid: int) -> List[int]:
        """The router sequence the packet's head flit visited."""
        return [
            e.node for e in self.trace(pid)
            if e.flit_idx == 0 and e.kind in ("hop", "eject")
        ]

    def wait_cycles(self, pid: int) -> int:
        """Cycles between the head flit's injection (or first recorded
        move) and its last move, minus the minimal hop count — time
        lost to contention, NI-link wait included."""
        head = [e for e in self.trace(pid) if e.flit_idx == 0
                and e.kind in ("inject", "hop", "eject")]
        if len(head) < 2:
            return 0
        elapsed = head[-1].cycle - head[0].cycle
        return max(0, elapsed - (len(head) - 1))

    def prune_delivered(self) -> int:
        """Drop traces of delivered packets; returns how many were dropped.

        Long-running monitors (the validation mode's auto-attached
        tracer) call this periodically so memory stays proportional to
        the in-flight population — stuck packets, by definition never
        delivered, keep their full history for the watchdog dump.
        """
        done = [
            pid for pid, packet in self.packets.items()
            if packet.delivered is not None
        ]
        for pid in done:
            del self.events[pid]
            del self.packets[pid]
        return len(done)

    def format_trace(self, pid: int) -> str:
        """Human-readable event log for one packet."""
        events = self.trace(pid)
        if not events:
            return f"packet {pid}: no recorded events"
        grid = self.network.grid
        lines = [f"packet {pid}:"]
        for e in events:
            x, y = grid.coord(e.node)
            lines.append(
                f"  cycle {e.cycle:>6}  ({x},{y})  {e.kind:<7} "
                f"flit {e.flit_idx}  {e.detail}"
            )
        return "\n".join(lines)
