"""Topology builders: plain mesh and the interposer concentrated mesh.

The CMesh used by the Interposer-CMesh baseline [Jerger et al., MICRO
2014] concentrates 2x2 tile blocks onto one CMesh router; the CMesh
routers form a half-size mesh whose links are routed in the interposer.
Each CMesh router has four local injection ports and four dedicated
ejection ports (one per attached tile), which is why those routers have
roughly twice the ports of a basic router (paper section 6.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.grid import Grid
from .network import Network, network_class
from .types import Packet


def build_mesh(
    name: str,
    width: int,
    flit_bytes: int,
    height: int = 0,
    engine: Optional[str] = None,
    **kwargs,
) -> Network:
    """A plain ``width x height`` mesh network."""
    cls = network_class(engine)
    return cls(name, Grid(width, height), flit_bytes, **kwargs)


@dataclass(frozen=True)
class CmeshEnvelope:
    """Token wrapper for packets travelling the concentrated mesh.

    ``real_src``/``real_dst`` are *base-grid* tile ids; ``inner`` is the
    logical payload (a memory transaction or test marker).
    """

    real_src: int
    real_dst: int
    inner: Optional[object] = None


class CmeshMap:
    """Coordinate mapping between the base grid and the CMesh grid."""

    def __init__(self, base: Grid, concentration: int = 2) -> None:
        if base.width % concentration or base.height % concentration:
            raise ValueError("grid not divisible by concentration factor")
        self.base = base
        self.concentration = concentration
        self.cgrid = Grid(base.width // concentration,
                          base.height // concentration)

    def cmesh_node(self, tile: int) -> int:
        x, y = self.base.coord(tile)
        c = self.concentration
        return self.cgrid.node(x // c, y // c)

    def local_index(self, tile: int) -> int:
        x, y = self.base.coord(tile)
        c = self.concentration
        return (y % c) * c + (x % c)

    def tiles_of(self, cnode: int) -> Tuple[int, ...]:
        cx, cy = self.cgrid.coord(cnode)
        c = self.concentration
        return tuple(
            self.base.node(cx * c + dx, cy * c + dy)
            for dy in range(c)
            for dx in range(c)
        )


def build_cmesh(
    base: Grid,
    flit_bytes: int,
    concentration: int = 2,
    engine: Optional[str] = None,
    **kwargs,
) -> Tuple[Network, CmeshMap, Dict[Tuple[int, int], int]]:
    """Build the interposer CMesh overlay network.

    Returns the network (over the reduced grid, with per-tile dedicated
    ejection ports and ``eject_filter`` installed), the coordinate map,
    and the ``(cmesh_node, local_index) -> eject_port`` table.  The
    caller wires one NI per base tile into the corresponding CMesh
    router.
    """
    cmap = CmeshMap(base, concentration)
    kwargs.setdefault("interposer_mesh_links", True)
    cls = network_class(engine)
    net = cls(
        "cmesh",
        cmap.cgrid,
        flit_bytes,
        **kwargs,
    )
    ports_per_tile = concentration * concentration
    eject_port_of: Dict[Tuple[int, int], int] = {}
    for cnode in cmap.cgrid.nodes():
        # The default eject port serves local index 0; add the rest.
        eject_port_of[(cnode, 0)] = net.routers[cnode].eject_ports[0]
        for local in range(1, ports_per_tile):
            eject_port_of[(cnode, local)] = net.add_eject_port(cnode)

    def make_filter(cnode: int):
        def eject_filter(packet: Packet):
            envelope = packet.token
            local = cmap.local_index(envelope.real_dst)
            return (eject_port_of[(cnode, local)],)

        return eject_filter

    for cnode in cmap.cgrid.nodes():
        net.routers[cnode].eject_filter = make_filter(cnode)
    return net, cmap, eject_port_of
