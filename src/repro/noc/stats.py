"""Statistics collected by a network: events, latency, heat maps.

Energy modelling consumes the raw event counters; Figure 4 consumes the
per-router residence numbers; Figure 10 consumes the per-type latency
decomposition (queuing vs non-queuing, where non-queuing is the
zero-load latency of the packet's path and queuing is everything above
it, including time spent waiting in the NI source queue).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

import numpy as np

from .types import Packet, PacketType


class LatencyAccumulator:
    """Running latency sums for one packet type.

    ``clamped`` counts samples whose modelled zero-load latency exceeded
    the measured total (clamped to keep queuing non-negative).  A
    non-zero count means the zero-load model overestimates some path —
    a bug in the pipeline model, not in the workload — so tests assert
    it stays 0.
    """

    __slots__ = ("count", "total", "queuing", "non_queuing", "clamped")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.queuing = 0
        self.non_queuing = 0
        self.clamped = 0

    def add(self, total: int, non_queuing: int) -> None:
        self.count += 1
        self.total += total
        if non_queuing > total:
            self.clamped += 1
        self.non_queuing += min(non_queuing, total)
        self.queuing += max(total - non_queuing, 0)

    @property
    def mean_total(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def mean_queuing(self) -> float:
        return self.queuing / self.count if self.count else 0.0

    @property
    def mean_non_queuing(self) -> float:
        return self.non_queuing / self.count if self.count else 0.0


class NetworkStats:
    """Event counters and latency records for one physical network."""

    # Counters the telemetry registry exports as end-of-run finals
    # (one ``net.<name>.<counter>`` entry per network per counter).
    TELEMETRY_COUNTERS = (
        "cycles",
        "flits_injected",
        "flits_ejected",
        "packets_created",
        "packets_delivered",
        "bits_delivered",
        "flits_dropped",
        "packets_recovered",
    )

    def __init__(self, num_nodes: int, flit_bytes: int) -> None:
        self.num_nodes = num_nodes
        self.flit_bytes = flit_bytes
        # Energy-relevant event counters.
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.xbar_traversals = 0
        self.vc_allocs = 0
        self.link_hops_onchip = 0
        self.link_hops_interposer = 0
        self.interposer_hop_length = 0.0  # sum of traversed lengths (tile units)
        self.flits_injected = 0
        self.flits_ejected = 0
        self.packets_created = 0
        self.packets_delivered = 0
        self.bits_delivered = 0
        # Dropped-flit ledger (fault injection).  ``flits_dropped``
        # counts flits that were already counted as injected but were
        # reclaimed off a failed link — it appears in the flit
        # conservation equation.  ``flits_reclaimed`` counts flits
        # cleared from an NI buffer before they were ever injected
        # (bookkeeping only).  ``packets_recovered`` counts packets
        # returned to an NI source queue for re-selection.
        self.flits_dropped = 0
        self.flits_reclaimed = 0
        self.packets_recovered = 0
        # Heat map: per-router flit residence.
        self.residence_cycles = np.zeros(num_nodes, dtype=np.int64)
        self.residence_count = np.zeros(num_nodes, dtype=np.int64)
        # Latency per packet type.
        self.latency: Dict[PacketType, LatencyAccumulator] = {
            t: LatencyAccumulator() for t in PacketType
        }
        self.cycles = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_move(self, node: int, residence: int) -> None:
        self.buffer_reads += 1
        self.xbar_traversals += 1
        self.residence_cycles[node] += residence
        self.residence_count[node] += 1

    def record_delivery(self, packet: Packet, non_queuing: int) -> None:
        self.packets_delivered += 1
        self.bits_delivered += packet.size * self.flit_bytes * 8
        self.latency[packet.ptype].add(packet.latency, non_queuing)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def heatmap(self) -> np.ndarray:
        """Average flit residence cycles per router (Figure 4)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            mean = np.where(
                self.residence_count > 0,
                self.residence_cycles / np.maximum(self.residence_count, 1),
                0.0,
            )
        return mean

    def heatmap_variance(self) -> float:
        """Variance of the per-router residence averages (Figure 4)."""
        return float(np.var(self.heatmap()))

    def mean_latency(self, types: Optional[List[PacketType]] = None) -> float:
        types = list(PacketType) if types is None else types
        count = sum(self.latency[t].count for t in types)
        total = sum(self.latency[t].total for t in types)
        return total / count if count else 0.0

    def latency_breakdown(self) -> Dict[str, float]:
        """Mean queuing / non-queuing latency for requests and replies."""
        req = [PacketType.READ_REQUEST, PacketType.WRITE_REQUEST]
        rep = [PacketType.READ_REPLY, PacketType.WRITE_REPLY]
        out: Dict[str, float] = {}
        for label, group in (("request", req), ("reply", rep)):
            count = sum(self.latency[t].count for t in group)
            queuing = sum(self.latency[t].queuing for t in group)
            nonq = sum(self.latency[t].non_queuing for t in group)
            out[f"{label}_queuing"] = queuing / count if count else 0.0
            out[f"{label}_non_queuing"] = nonq / count if count else 0.0
        return out

    def snapshot(self) -> Dict[str, object]:
        """Every counter as plain data, for fingerprinting and tests.

        Two runs of the same (seed, config) must produce bit-identical
        snapshots regardless of process boundaries or cache state; the
        determinism tests and the parallel runner rely on this.
        """
        return {
            "cycles": self.cycles,
            "buffer_writes": self.buffer_writes,
            "buffer_reads": self.buffer_reads,
            "xbar_traversals": self.xbar_traversals,
            "vc_allocs": self.vc_allocs,
            "link_hops_onchip": self.link_hops_onchip,
            "link_hops_interposer": self.link_hops_interposer,
            "interposer_hop_length": self.interposer_hop_length,
            "flits_injected": self.flits_injected,
            "flits_ejected": self.flits_ejected,
            "packets_created": self.packets_created,
            "packets_delivered": self.packets_delivered,
            "bits_delivered": self.bits_delivered,
            "flits_dropped": self.flits_dropped,
            "flits_reclaimed": self.flits_reclaimed,
            "packets_recovered": self.packets_recovered,
            "residence_cycles": self.residence_cycles.tolist(),
            "residence_count": self.residence_count.tolist(),
            "latency": {
                t.name: (acc.count, acc.total, acc.queuing,
                         acc.non_queuing, acc.clamped)
                for t, acc in sorted(self.latency.items())
            },
        }

    def fingerprint(self) -> str:
        """A stable hash of :meth:`snapshot` (hex digest)."""
        payload = json.dumps(self.snapshot(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()

    def merge(self, other: "NetworkStats") -> None:
        """Fold another network's counters into this one (DA2Mesh subnets)."""
        self.buffer_writes += other.buffer_writes
        self.buffer_reads += other.buffer_reads
        self.xbar_traversals += other.xbar_traversals
        self.vc_allocs += other.vc_allocs
        self.link_hops_onchip += other.link_hops_onchip
        self.link_hops_interposer += other.link_hops_interposer
        self.interposer_hop_length += other.interposer_hop_length
        self.flits_injected += other.flits_injected
        self.flits_ejected += other.flits_ejected
        self.packets_created += other.packets_created
        self.packets_delivered += other.packets_delivered
        self.bits_delivered += other.bits_delivered
        self.flits_dropped += other.flits_dropped
        self.flits_reclaimed += other.flits_reclaimed
        self.packets_recovered += other.packets_recovered
        self.residence_cycles += other.residence_cycles
        self.residence_count += other.residence_count
        for t in PacketType:
            acc, oacc = self.latency[t], other.latency[t]
            acc.count += oacc.count
            acc.total += oacc.total
            acc.queuing += oacc.queuing
            acc.non_queuing += oacc.non_queuing
            acc.clamped += oacc.clamped
