"""Network invariant checking (debugging and test support).

``check_invariants`` inspects a live network and returns human-readable
descriptions of anything inconsistent: credit counts out of range,
orphaned VC ownership, buffer overflows, or flits parked in VCs their
class does not permit.  The simulator never calls this on the hot path;
tests and bring-up scripts do.
"""

from __future__ import annotations

from typing import List

from .network import Network
from .router import Router


def check_invariants(net: Network, strict_classes: bool = True) -> List[str]:
    """Return a list of invariant violations (empty = healthy)."""
    problems: List[str] = []
    for router in net.routers:
        problems.extend(_check_router(net, router, strict_classes))
    problems.extend(_check_credits(net))
    return problems


def _check_router(net: Network, router: Router,
                  strict_classes: bool) -> List[str]:
    problems = []
    counted = 0
    for port in router.input_ports:
        for vc, ivc in enumerate(router.inputs[port]):
            counted += len(ivc.queue)
            if len(ivc.queue) > net.vc_capacity:
                problems.append(
                    f"router {router.node} in(p{port},v{vc}) holds "
                    f"{len(ivc.queue)} flits > capacity {net.vc_capacity}"
                )
            # NOTE: an empty queue with a route assigned is legitimate —
            # all buffered flits were forwarded while the packet's tail
            # is still in flight on the upstream link.
            if strict_classes and not router.monopolize:
                for flit in ivc.queue:
                    allowed = net.vc_classes[flit.packet.vc_class]
                    if vc not in allowed:
                        problems.append(
                            f"router {router.node} in(p{port},v{vc}): flit "
                            f"of class {flit.packet.vc_class} in foreign VC"
                        )
    if counted != router.flit_count:
        problems.append(
            f"router {router.node} flit_count {router.flit_count} != "
            f"buffered {counted}"
        )
    return problems


def _check_credits(net: Network) -> List[str]:
    problems = []
    for router in net.routers:
        for port_idx, out in router.outputs.items():
            for vc in range(out.num_vcs):
                credits = out.credits[vc]
                if credits < 0:
                    problems.append(
                        f"router {router.node} out(p{port_idx},v{vc}) "
                        f"negative credits {credits}"
                    )
                if credits > out.capacity:
                    problems.append(
                        f"router {router.node} out(p{port_idx},v{vc}) "
                        f"credits {credits} exceed capacity {out.capacity}"
                    )
    return problems


def assert_healthy(net: Network, strict_classes: bool = True) -> None:
    """Raise ``AssertionError`` listing all violations, if any."""
    problems = check_invariants(net, strict_classes)
    if problems:
        raise AssertionError(
            f"{len(problems)} network invariant violation(s):\n  "
            + "\n  ".join(problems)
        )
