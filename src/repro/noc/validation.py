"""Network conservation audit (debugging, watchdog and test support).

``audit_network`` inspects a live network between ticks and returns an
:class:`AuditReport` describing anything inconsistent:

* **flit conservation** — every flit counted as injected is either
  buffered in a router, in flight on a link, or counted as ejected;
* **packet conservation** — every packet created at an NI is delivered,
  queued at an NI, or in flight;
* **credit conservation** — for *every* link with credit flow control,
  including the NI injection links reachable via ``Network.upstream``
  (the paper's most contended port class) and the ejection links into
  the receive queues: ``capacity == credits + occupancy + in-flight
  flits + in-flight credit returns``;
* **VC-ownership consistency** — output-VC owners and input-VC route
  allocations always point at each other, for router inputs and NI
  injection buffers alike;
* the original structural checks: buffer overflow, ``flit_count``
  drift, and flits parked in VCs their class does not permit.

``check_invariants`` keeps the original list-of-strings interface; the
simulator never calls any of this on the hot path.  Tests, bring-up
scripts, and the periodic validation mode (``REPRO_VALIDATE``) do.

All invariants hold *between* network ticks; calling the audit from
inside a tick (e.g. a router hook) reports false violations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from .network import Network
from .router import Router
from .types import Packet


@dataclass
class AuditReport:
    """Outcome of one conservation audit of one network."""

    network: str
    cycle: int
    problems: List[str]
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.problems

    def format(self) -> str:
        head = (
            f"audit[{self.network}] cycle {self.cycle}: "
            + ("healthy" if self.ok else f"{len(self.problems)} violation(s)")
        )
        lines = [head]
        if self.counters:
            lines.append(
                "  counters: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
            )
        lines.extend(f"  - {p}" for p in self.problems)
        return "\n".join(lines)


class NetworkAuditError(RuntimeError):
    """A periodic audit found conservation violations.

    ``reports`` holds every network's :class:`AuditReport` from the
    failing audit pass (healthy networks included, for context).
    """

    def __init__(self, reports: List[AuditReport], dump: str = "") -> None:
        self.reports = reports
        self.dump = dump
        bad = [r for r in reports if not r.ok]
        message = "\n".join(r.format() for r in bad) or "audit failed"
        if dump:
            message = f"{message}\n{dump}"
        super().__init__(message)


# ----------------------------------------------------------------------
# Census: where every flit (and packet) currently is
# ----------------------------------------------------------------------
@dataclass
class _Census:
    """Per-packet flit locations, gathered in one pass over the network."""

    # pid -> flits in NI buffers, router input queues or link arrivals
    # (everything upstream of an ejection commit).
    in_network: Counter = field(default_factory=Counter)
    # pid -> flits committed to an ejection port, en route to the sink.
    to_sink: Counter = field(default_factory=Counter)
    packets: Dict[int, Packet] = field(default_factory=dict)
    buffered: int = 0          # flits in router input VCs
    link_flits: int = 0        # flits scheduled on router/NI links
    sink_flits: int = 0        # flits scheduled into ejection sinks
    ni_flits: int = 0          # flits waiting in NI injection buffers
    source_backlog: int = 0    # packets in NI source queues
    receive_queued: int = 0    # delivered packets awaiting pop

    def seen(self, pid: int) -> bool:
        return pid in self.packets


def _take_census(net: Network) -> _Census:
    census = _Census()
    for router in net.routers:
        for port in router.input_ports:
            for ivc in router.inputs[port]:
                for flit in ivc.queue:
                    census.in_network[flit.packet.pid] += 1
                    census.packets[flit.packet.pid] = flit.packet
                    census.buffered += 1
    for events in net._arrivals.values():
        for _node, port, _vc, flit in events:
            census.packets[flit.packet.pid] = flit.packet
            if port < 0:
                census.to_sink[flit.packet.pid] += 1
                census.sink_flits += 1
            else:
                census.in_network[flit.packet.pid] += 1
                census.link_flits += 1
    for ni in net.nis:
        census.source_backlog += len(ni.source_queue)
        for buf in ni.buffers:
            for flit in buf.flits:
                census.in_network[flit.packet.pid] += 1
                census.packets[flit.packet.pid] = flit.packet
                census.ni_flits += 1
    for queue in net.receive_queues.values():
        census.receive_queued += len(queue)
    return census


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def audit_network(net: Network, strict_classes: bool = True) -> AuditReport:
    """Full conservation audit of one network (empty problems = healthy)."""
    net.sync_for_inspection()
    census = _take_census(net)
    problems: List[str] = []
    for router in net.routers:
        problems.extend(_check_router(net, router, strict_classes))
        problems.extend(_check_ownership(net, router))
    problems.extend(_check_credits(net, census))
    problems.extend(_check_eject_conservation(net, census))
    problems.extend(_check_ni_buffers(net))
    problems.extend(_check_flit_conservation(net, census))
    problems.extend(_check_packet_conservation(net, census))
    problems.extend(_check_scheduler_sets(net))
    stats = net.stats
    counters = {
        "flits_injected": stats.flits_injected,
        "flits_ejected": stats.flits_ejected,
        "flits_buffered": census.buffered,
        "flits_on_links": census.link_flits,
        "flits_to_sink": census.sink_flits,
        "flits_in_ni_buffers": census.ni_flits,
        "packets_created": stats.packets_created,
        "packets_delivered": stats.packets_delivered,
        "ni_backlog": census.source_backlog,
        "receive_queued": census.receive_queued,
        "flits_dropped": stats.flits_dropped,
        "flits_reclaimed": stats.flits_reclaimed,
        "packets_recovered": stats.packets_recovered,
    }
    return AuditReport(
        network=net.name, cycle=net.cycle, problems=problems, counters=counters
    )


def check_invariants(net: Network, strict_classes: bool = True) -> List[str]:
    """Return a list of invariant violations (empty = healthy)."""
    return audit_network(net, strict_classes).problems


def assert_healthy(net: Network, strict_classes: bool = True) -> None:
    """Raise ``AssertionError`` listing all violations, if any."""
    problems = check_invariants(net, strict_classes)
    if problems:
        raise AssertionError(
            f"{len(problems)} network invariant violation(s):\n  "
            + "\n  ".join(problems)
        )


# ----------------------------------------------------------------------
# Structural checks (per router)
# ----------------------------------------------------------------------
def _check_router(net: Network, router: Router,
                  strict_classes: bool) -> List[str]:
    problems = []
    counted = 0
    for port in router.input_ports:
        port_counted = 0
        for vc, ivc in enumerate(router.inputs[port]):
            counted += len(ivc.queue)
            port_counted += len(ivc.queue)
            if len(ivc.queue) > net.vc_capacity:
                problems.append(
                    f"router {router.node} in(p{port},v{vc}) holds "
                    f"{len(ivc.queue)} flits > capacity {net.vc_capacity}"
                )
            # NOTE: an empty queue with a route assigned is legitimate —
            # all buffered flits were forwarded while the packet's tail
            # is still in flight on the upstream link.
            if strict_classes and not router.monopolize:
                if net.loops is not None:
                    # Loop topologies: VC legality is positional (the
                    # dateline), not class-based.
                    expected_vc = net.loop_vc_fn
                    for flit in ivc.queue:
                        if expected_vc is None or flit.packet.lane is None:
                            continue
                        want = expected_vc(flit.packet, router.node)
                        if vc != want:
                            problems.append(
                                f"router {router.node} in(p{port},v{vc}): "
                                f"flit of lane {flit.packet.lane} off its "
                                f"dateline VC {want}"
                            )
                else:
                    for flit in ivc.queue:
                        allowed = net.vc_classes[flit.packet.vc_class]
                        if vc not in allowed:
                            problems.append(
                                f"router {router.node} in(p{port},v{vc}): "
                                f"flit of class {flit.packet.vc_class} in "
                                f"foreign VC"
                            )
        if port_counted != router.port_flits.get(port, 0):
            problems.append(
                f"router {router.node} port_flits[p{port}] "
                f"{router.port_flits.get(port, 0)} != buffered {port_counted}"
            )
    if counted != router.flit_count:
        problems.append(
            f"router {router.node} flit_count {router.flit_count} != "
            f"buffered {counted}"
        )
    return problems


def _check_ownership(net: Network, router: Router) -> List[str]:
    """Output-VC owners and input-VC allocations must point at each other."""
    problems = []
    for port in router.input_ports:
        for vc, ivc in enumerate(router.inputs[port]):
            if ivc.out_port is None:
                continue
            if ivc.out_vc is None:
                problems.append(
                    f"router {router.node} in(p{port},v{vc}) routed to "
                    f"p{ivc.out_port} with no output VC"
                )
                continue
            out = router.outputs.get(ivc.out_port)
            if out is None:
                problems.append(
                    f"router {router.node} in(p{port},v{vc}) routed to "
                    f"missing output p{ivc.out_port}"
                )
            elif out.owner[ivc.out_vc] != (port, vc):
                problems.append(
                    f"router {router.node} in(p{port},v{vc}) claims "
                    f"out(p{ivc.out_port},v{ivc.out_vc}) but owner is "
                    f"{out.owner[ivc.out_vc]!r}"
                )
    for out_port, out in router.outputs.items():
        for vc in range(out.num_vcs):
            owner = out.owner[vc]
            if owner is None:
                continue
            if (
                not isinstance(owner, tuple)
                or len(owner) != 2
                or owner[0] not in router.inputs
            ):
                problems.append(
                    f"router {router.node} out(p{out_port},v{vc}) has "
                    f"foreign owner {owner!r}"
                )
                continue
            ivc = router.inputs[owner[0]][owner[1]]
            if ivc.out_port != out_port or ivc.out_vc != vc:
                problems.append(
                    f"router {router.node} out(p{out_port},v{vc}) owned by "
                    f"in(p{owner[0]},v{owner[1]}) which is allocated to "
                    f"(p{ivc.out_port},v{ivc.out_vc})"
                )
    return problems


# ----------------------------------------------------------------------
# Credit checks (every link, including NI injection links)
# ----------------------------------------------------------------------
def _scheduled_flits_by_dest(net: Network) -> Counter:
    """(node, port, vc) -> flits in flight toward that input VC."""
    counts: Counter = Counter()
    for events in net._arrivals.values():
        for node, port, vc, _flit in events:
            if port >= 0:
                counts[(node, port, vc)] += 1
    return counts


def _scheduled_credits_by_link(net: Network) -> Counter:
    """(id(OutputPort), vc) -> credit returns in flight to that link."""
    counts: Counter = Counter()
    for events in net._credits.values():
        for port, vc in events:
            counts[(id(port), vc)] += 1
    return counts


def _check_credits(net: Network, census: _Census) -> List[str]:
    problems = []
    flits_en_route = _scheduled_flits_by_dest(net)
    credits_en_route = _scheduled_credits_by_link(net)

    # Range checks on every output port, ejection ports included.
    for router in net.routers:
        for port_idx, out in router.outputs.items():
            for vc in range(out.num_vcs):
                credits = out.credits[vc]
                if credits < 0:
                    problems.append(
                        f"router {router.node} out(p{port_idx},v{vc}) "
                        f"negative credits {credits}"
                    )
                if credits > out.capacity:
                    problems.append(
                        f"router {router.node} out(p{port_idx},v{vc}) "
                        f"credits {credits} exceed capacity {out.capacity}"
                    )

    # Range + full conservation over every credit link in the upstream
    # map: router-to-router mesh links and the NI injection links the
    # original checker never audited.
    for (node, port), link in net.upstream.items():
        downstream = net.routers[node].inputs.get(port)
        if downstream is None:
            problems.append(
                f"upstream link targets missing input p{port} of router {node}"
            )
            continue
        for vc in range(link.num_vcs):
            credits = link.credits[vc]
            label = f"link into router {node} in(p{port},v{vc})"
            if credits < 0:
                problems.append(f"{label}: negative credits {credits}")
            if credits > link.capacity:
                problems.append(
                    f"{label}: credits {credits} exceed capacity "
                    f"{link.capacity}"
                )
            occupancy = len(downstream[vc].queue)
            in_flight = flits_en_route.get((node, port, vc), 0)
            returning = credits_en_route.get((id(link), vc), 0)
            accounted = credits + occupancy + in_flight + returning
            if accounted != link.capacity:
                problems.append(
                    f"{label}: credit leak — credits {credits} + buffered "
                    f"{occupancy} + in-flight {in_flight} + returning "
                    f"{returning} = {accounted} != capacity {link.capacity}"
                )
    return problems


def _check_eject_conservation(net: Network, census: _Census) -> List[str]:
    """Ejection-link credits: capacity == credits + consumed slots.

    A slot is consumed from an ejection commit until ``pop_delivered``
    returns the whole packet's worth.  Consumed slots per ejecting
    packet ``p`` equal ``p.size`` minus the flits of ``p`` still
    upstream of the ejection commit (in NI buffers, router queues or on
    links) — this covers partially-ejected wormhole packets exactly.
    """
    problems = []
    for router in net.routers:
        for eject in router.eject_ports:
            out = router.outputs[eject]
            consumed = 0
            seen: set = set()
            queue = net.receive_queues.get((router.node, eject), ())
            for packet, _link in queue:
                consumed += packet.size
                seen.add(packet.pid)
            # Packets committed to this ejection port but not yet fully
            # in the receive queue (identifiable from any surviving flit).
            for pid, packet in census.packets.items():
                if pid in seen or packet.delivered is not None:
                    continue
                if packet.eject_port is not out:
                    continue
                consumed += packet.size - census.in_network.get(pid, 0)
            accounted = out.credits[0] + consumed
            if accounted != out.capacity:
                problems.append(
                    f"router {router.node} eject(p{eject}): credit leak — "
                    f"credits {out.credits[0]} + consumed {consumed} = "
                    f"{accounted} != capacity {out.capacity}"
                )
    return problems


def _check_ni_buffers(net: Network) -> List[str]:
    """NI injection buffers: single-packet occupancy and VC ownership."""
    problems = []
    for ni in net.nis:
        for idx, buf in enumerate(ni.buffers):
            label = f"NI {ni.node} buffer {idx} (-> router {buf.target_node})"
            if buf.failed and (buf.flits or buf.cur_vc is not None):
                problems.append(
                    f"{label}: quarantined but holds "
                    f"{len(buf.flits)} flit(s), cur_vc {buf.cur_vc}"
                )
            if buf.draining and buf.cur_vc is None:
                problems.append(f"{label}: draining without a held VC")
            pids = {flit.packet.pid for flit in buf.flits}
            if len(pids) > 1:
                problems.append(f"{label}: flits of {len(pids)} packets")
            if buf.flits and len(buf.flits) > buf.flits[0].packet.size:
                problems.append(
                    f"{label}: {len(buf.flits)} flits exceed packet size "
                    f"{buf.flits[0].packet.size}"
                )
            if buf.cur_vc is not None:
                if buf.link.owner[buf.cur_vc] is not buf:
                    problems.append(
                        f"{label}: holds v{buf.cur_vc} but link owner is "
                        f"{buf.link.owner[buf.cur_vc]!r}"
                    )
            for vc in range(buf.link.num_vcs):
                if buf.link.owner[vc] is buf and buf.cur_vc != vc:
                    problems.append(
                        f"{label}: link v{vc} owned by buffer whose "
                        f"cur_vc is {buf.cur_vc}"
                    )
    return problems


# ----------------------------------------------------------------------
# Conservation checks (network-wide)
# ----------------------------------------------------------------------
def _check_flit_conservation(net: Network, census: _Census) -> List[str]:
    stats = net.stats
    in_flight = census.buffered + census.link_flits
    # ``flits_dropped`` is the fault-injection ledger: flits counted as
    # injected but reclaimed off a failed link.  A reclaimed flit that
    # is later retransmitted is counted as injected again, so the
    # equation stays exact under faults without disabling the audit.
    accounted = in_flight + stats.flits_ejected + stats.flits_dropped
    if stats.flits_injected != accounted:
        return [
            f"flit conservation: injected {stats.flits_injected} != "
            f"buffered {census.buffered} + on-link {census.link_flits} + "
            f"ejected {stats.flits_ejected} + dropped {stats.flits_dropped}"
        ]
    return []


def _check_packet_conservation(net: Network, census: _Census) -> List[str]:
    stats = net.stats
    in_flight_packets = sum(
        1 for pid, p in census.packets.items() if p.delivered is None
    )
    accounted = (
        stats.packets_delivered + census.source_backlog + in_flight_packets
    )
    problems = []
    if stats.packets_created != accounted:
        problems.append(
            f"packet conservation: created {stats.packets_created} != "
            f"delivered {stats.packets_delivered} + NI backlog "
            f"{census.source_backlog} + in flight {in_flight_packets}"
        )
    queued = sum(net._delivered.values())
    if queued != census.receive_queued:
        problems.append(
            f"delivered-count drift: _delivered total {queued} != "
            f"receive-queue occupancy {census.receive_queued}"
        )
    if net._delivered_total != census.receive_queued:
        problems.append(
            f"delivered-total drift: _delivered_total "
            f"{net._delivered_total} != receive-queue occupancy "
            f"{census.receive_queued}"
        )
    return problems


def _check_scheduler_sets(net: Network) -> List[str]:
    """Active-set completeness and minimality (active scheduler only).

    Between ticks the router active set must equal the set of routers
    holding flits, and the NI active set must equal the set of NIs with
    pending work — a missed wake here is exactly the bug class that
    would make the active scheduler diverge from the dense oracle.
    """
    if not net._active_scheduler:
        return []
    problems = []
    with_flits = {r.node for r in net.routers if r.flit_count}
    missing = with_flits - net.active
    stale = net.active - with_flits
    if missing:
        problems.append(
            f"scheduler: routers with flits not in active set: "
            f"{sorted(missing)}"
        )
    if stale:
        problems.append(
            f"scheduler: empty routers left in active set: {sorted(stale)}"
        )
    with_work = {i for i, ni in enumerate(net.nis) if ni.has_work()}
    ni_missing = with_work - net._active_nis
    ni_stale = net._active_nis - with_work
    if ni_missing:
        problems.append(
            f"scheduler: NIs with work not armed: {sorted(ni_missing)}"
        )
    if ni_stale:
        problems.append(
            f"scheduler: workless NIs left armed: {sorted(ni_stale)}"
        )
    return problems
