"""Cycle-based flit-level NoC simulator (the BookSim-equivalent substrate)."""

from .interface import (
    EquiNoxInterface,
    InjectionBuffer,
    MultiPortInterface,
    NetworkInterface,
)
from .diagnostics import (
    Validator,
    network_dump,
    oldest_stuck_packet,
    stall_dump,
)
from .network import Network
from .router import Router
from .stats import NetworkStats
from .topology import CmeshEnvelope, CmeshMap, build_cmesh, build_mesh
from .tracer import HopEvent, PacketTracer
from .validation import (
    AuditReport,
    NetworkAuditError,
    assert_healthy,
    audit_network,
    check_invariants,
)
from .types import (
    CACHE_LINE_BYTES,
    Flit,
    Packet,
    PacketType,
    packet_bytes,
    packet_flits,
)

__all__ = [
    "EquiNoxInterface",
    "InjectionBuffer",
    "MultiPortInterface",
    "NetworkInterface",
    "Network",
    "Router",
    "NetworkStats",
    "CmeshEnvelope",
    "CmeshMap",
    "build_cmesh",
    "build_mesh",
    "CACHE_LINE_BYTES",
    "Flit",
    "Packet",
    "PacketType",
    "packet_bytes",
    "packet_flits",
    "HopEvent",
    "PacketTracer",
    "AuditReport",
    "NetworkAuditError",
    "Validator",
    "assert_healthy",
    "audit_network",
    "check_invariants",
    "network_dump",
    "oldest_stuck_packet",
    "stall_dump",
]
