"""Cycle-based flit-level NoC simulator (the BookSim-equivalent substrate)."""

from .interface import (
    EquiNoxInterface,
    InjectionBuffer,
    MultiPortInterface,
    NetworkInterface,
)
from .network import Network
from .router import Router
from .stats import NetworkStats
from .topology import CmeshEnvelope, CmeshMap, build_cmesh, build_mesh
from .tracer import HopEvent, PacketTracer
from .validation import assert_healthy, check_invariants
from .types import (
    CACHE_LINE_BYTES,
    Flit,
    Packet,
    PacketType,
    packet_bytes,
    packet_flits,
)

__all__ = [
    "EquiNoxInterface",
    "InjectionBuffer",
    "MultiPortInterface",
    "NetworkInterface",
    "Network",
    "Router",
    "NetworkStats",
    "CmeshEnvelope",
    "CmeshMap",
    "build_cmesh",
    "build_mesh",
    "CACHE_LINE_BYTES",
    "Flit",
    "Packet",
    "PacketType",
    "packet_bytes",
    "packet_flits",
    "HopEvent",
    "PacketTracer",
    "assert_healthy",
    "check_invariants",
]
